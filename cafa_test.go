package cafa

import (
	"bytes"
	"strings"
	"testing"
)

// The quick-start flow from the package documentation, end to end.
func TestQuickstartFlow(t *testing.T) {
	prog := MustAssemble(`
.method run(this) regs=1
    return-void
.end

.method onUse(h) regs=3
    iget v1, h, session
    invoke-virtual run, v1
    return-void
.end

.method onFree(h) regs=2
    const-null v1
    iput v1, h, session
    return-void
.end

.method sender(h) regs=5
    sget-int v1, mainQ
    const-method v2, onUse
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method sender2(h) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, onFree
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end
`)
	col := NewCollector()
	sys := NewSystem(prog, SystemConfig{Tracer: col, Seed: 1})
	main := sys.AddLooper("main", 0)
	sys.Heap().SetStatic(prog.FieldID("mainQ"), Int(main.Handle()))
	holder := sys.Heap().New("Activity")
	session := sys.Heap().New("Session")
	holder.Set(prog.FieldID("session"), Obj(session))
	if _, err := sys.StartThread("s1", "sender", Obj(holder)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StartThread("s2", "sender2", Obj(holder)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(col.T, AnalyzeOptions{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 1 {
		t.Fatalf("races = %d, want 1 (stats %+v)", len(rep.Races), rep.Stats)
	}
	if rep.Races[0].Class != ClassIntraThread {
		t.Errorf("class = %v", rep.Races[0].Class)
	}
	desc := rep.Describe(rep.Races[0])
	if !strings.Contains(desc, "session") || !strings.Contains(desc, "onUse") {
		t.Errorf("Describe = %q", desc)
	}
	if rep.GraphStats.Nodes == 0 {
		t.Error("graph stats empty")
	}
}

func TestDeviceSinkThroughFacade(t *testing.T) {
	prog := MustAssemble(`
.method main(arg) regs=2
    const-int v1, #1
    sput-int v1, ran
    return-void
.end
`)
	sink := NewDeviceSink()
	sys := NewSystem(prog, SystemConfig{Tracer: sink})
	if _, err := sys.StartThread("main", "main", Null()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Entries() == 0 || sink.Bytes() == 0 {
		t.Error("device sink recorded nothing")
	}
}

func TestConventionalGraphThroughFacade(t *testing.T) {
	prog := MustAssemble(`
.method onA(arg) regs=1
    return-void
.end

.method onB(arg) regs=1
    return-void
.end

.method sendA(q) regs=4
    const-method v1, onA
    const-int v2, #0
    const-null v3
    send q, v1, v2, v3
    return-void
.end

.method sendB(q) regs=4
    const-method v1, onB
    const-int v2, #0
    const-null v3
    send q, v1, v2, v3
    return-void
.end
`)
	col := NewCollector()
	sys := NewSystem(prog, SystemConfig{Tracer: col, Seed: 1})
	looper := sys.AddLooper("main", 0)
	if _, err := sys.StartThread("sa", "sendA", Int(looper.Handle())); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StartThread("sb", "sendB", Int(looper.Handle())); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var a, b TaskID
	for id, ti := range col.T.Tasks {
		switch ti.Name {
		case "onA":
			a = id
		case "onB":
			b = id
		}
	}
	g, err := BuildGraph(col.T, GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := BuildGraph(col.T, GraphOptions{Conventional: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.TasksConcurrent(a, b) {
		t.Error("independently sent events must be concurrent in the event-driven model")
	}
	if conv.TasksConcurrent(a, b) {
		t.Error("conventional model must totally order looper events")
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	prog := MustAssemble(`
.method main(arg) regs=2
    const-int v1, #1
    sput-int v1, ran
    return-void
.end
`)
	col := NewCollector()
	sys := NewSystem(prog, SystemConfig{Tracer: col})
	if _, err := sys.StartThread("main", "main", Null()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.T.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != col.T.Len() {
		t.Errorf("round trip lost entries: %d vs %d", back.Len(), col.T.Len())
	}
	if _, err := BuildGraph(back, GraphOptions{}); err != nil {
		t.Fatal(err)
	}
}

package cafa_test

import (
	"fmt"

	"cafa"
)

// Example records a trace of a racy two-event program and analyzes it
// offline — the full CAFA pipeline through the public API.
func Example() {
	prog := cafa.MustAssemble(`
.method run(this) regs=1
    return-void
.end

.method onUse(h) regs=3
    iget v1, h, session
    invoke-virtual run, v1
    return-void
.end

.method onFree(h) regs=2
    const-null v1
    iput v1, h, session
    return-void
.end

.method sendUse(h) regs=5
    sget-int v1, mainQ
    const-method v2, onUse
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end

.method sendFree(h) regs=5
    const-int v3, #20
    sleep v3
    sget-int v1, mainQ
    const-method v2, onFree
    const-int v3, #0
    send v1, v2, v3, h
    return-void
.end
`)
	col := cafa.NewCollector()
	sys := cafa.NewSystem(prog, cafa.SystemConfig{Tracer: col, Seed: 1})
	looper := sys.AddLooper("main", 0)
	sys.Heap().SetStatic(prog.FieldID("mainQ"), cafa.Int(looper.Handle()))

	activity := sys.Heap().New("Activity")
	session := sys.Heap().New("Session")
	activity.Set(prog.FieldID("session"), cafa.Obj(session))
	if _, err := sys.StartThread("s1", "sendUse", cafa.Obj(activity)); err != nil {
		panic(err)
	}
	if _, err := sys.StartThread("s2", "sendFree", cafa.Obj(activity)); err != nil {
		panic(err)
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}

	rep, err := cafa.Analyze(col.T, cafa.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	for _, r := range rep.Races {
		fmt.Println(rep.Describe(r))
	}
	// Output:
	// intra-thread race on o1.session: use in onUse (onUse pc=1) vs free in onFree (onFree pc=1)
}

package cafa

// Benchmarks regenerating the paper's evaluation artifacts. One bench
// per table/figure plus component benches for the pipeline stages.
// The benches run at a reduced filler scale so `go test -bench=.`
// stays tractable; `cmd/cafa-bench -all -scale 1` regenerates the
// full-volume numbers (see EXPERIMENTS.md).

import (
	"bytes"
	"fmt"
	"testing"

	"cafa/internal/apps"
	"cafa/internal/detect"
	"cafa/internal/hb"
	"cafa/internal/lockset"
	"cafa/internal/report"
	"cafa/internal/sim"
	"cafa/internal/trace"
	"cafa/internal/vclock"
)

const benchScale = 8

// traceApp runs one app model and returns its trace.
func traceApp(b *testing.B, name string) *trace.Trace {
	b.Helper()
	spec, ok := apps.ByName(name)
	if !ok {
		b.Fatalf("no app %q", name)
	}
	col := trace.NewCollector()
	out, err := apps.Build(spec, sim.Config{Tracer: col, Seed: 1}, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	if err := out.Sys.Run(); err != nil {
		b.Fatal(err)
	}
	return col.T
}

// BenchmarkTable1 regenerates Table 1: the full trace → causality
// model → detector pipeline, one sub-benchmark per application.
func BenchmarkTable1(b *testing.B) {
	for _, spec := range apps.Registry {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var reported int
			for i := 0; i < b.N; i++ {
				r, err := report.RunApp(spec, report.RunOptions{Scale: benchScale})
				if err != nil {
					b.Fatal(err)
				}
				reported = r.Reported
			}
			b.ReportMetric(float64(reported), "races")
			b.ReportMetric(float64(spec.Paper.Reported), "paper-races")
		})
	}
}

// BenchmarkFig8 regenerates Figure 8: the same workload executed with
// the serializing tracer vs. uninstrumented; the interesting output is
// the ratio of the two sub-benchmark times per app.
func BenchmarkFig8(b *testing.B) {
	for _, spec := range apps.Registry {
		spec := spec
		for _, mode := range []string{"baseline", "traced"} {
			mode := mode
			b.Run(fmt.Sprintf("%s/%s", spec.Name, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var tracer trace.Tracer = trace.Discard{}
					if mode == "traced" {
						tracer = trace.NewDeviceSink()
					}
					out, err := apps.Build(spec, sim.Config{Tracer: tracer, Seed: 1}, benchScale)
					if err != nil {
						b.Fatal(err)
					}
					if err := out.Sys.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLowLevelBaseline regenerates the §4.1 claim: the naive
// conflicting-access detector on ConnectBot's trace.
func BenchmarkLowLevelBaseline(b *testing.B) {
	tr := traceApp(b, "ConnectBot")
	g, err := hb.Build(tr, hb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(detect.Naive(g))
	}
	b.ReportMetric(float64(n), "naive-races")
}

// BenchmarkHBBuild measures causality-model construction (graph,
// closure, fixpoint) on the largest app trace.
func BenchmarkHBBuild(b *testing.B) {
	tr := traceApp(b, "Camera")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hb.Build(tr, hb.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Entries)), "entries")
}

// BenchmarkDetect measures the use-free detector alone.
func BenchmarkDetect(b *testing.B) {
	tr := traceApp(b, "Browser")
	g, err := hb.Build(tr, hb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	conv, err := hb.Build(tr, hb.Options{Conventional: true})
	if err != nil {
		b.Fatal(err)
	}
	ls, err := lockset.Compute(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detect.Detect(detect.Input{Trace: tr, Graph: g, Conventional: conv, Locks: ls}, detect.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRun measures the simulated runtime alone (uninstrumented).
func BenchmarkSimRun(b *testing.B) {
	spec, _ := apps.ByName("MyTracks")
	for i := 0; i < b.N; i++ {
		out, err := apps.Build(spec, sim.Config{Tracer: trace.Discard{}, Seed: 1}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := out.Sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCodec measures the logger-device serialization round
// trip.
func BenchmarkTraceCodec(b *testing.B) {
	tr := traceApp(b, "VLC")
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := tr.Encode(&w); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(data)))
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := trace.Decode(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(data)))
	})
}

// BenchmarkFastTrackBaseline measures the thread-based vector-clock
// detector from §7.1 on an app trace (it reports nothing intra-looper
// by construction).
func BenchmarkFastTrackBaseline(b *testing.B) {
	tr := traceApp(b, "ZXing")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vclock.FastTrack(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation measures the detector with each pruning stage
// disabled (the design-choice ablations called out in DESIGN.md).
func BenchmarkAblation(b *testing.B) {
	tr := traceApp(b, "Firefox")
	g, err := hb.Build(tr, hb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	conv, err := hb.Build(tr, hb.Options{Conventional: true})
	if err != nil {
		b.Fatal(err)
	}
	ls, err := lockset.Compute(tr)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		opts detect.Options
	}{
		{"full", detect.Options{}},
		{"no-ifguard", detect.Options{DisableIfGuard: true}},
		{"no-intra-alloc", detect.Options{DisableIntraEventAlloc: true}},
		{"no-lockset", detect.Options{DisableLockset: true}},
		{"no-heuristics", detect.Options{DisableIfGuard: true, DisableIntraEventAlloc: true, DisableLockset: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var races int
			for i := 0; i < b.N; i++ {
				res, err := detect.Detect(detect.Input{Trace: tr, Graph: g, Conventional: conv, Locks: ls}, c.opts)
				if err != nil {
					b.Fatal(err)
				}
				races = len(res.Races)
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}
